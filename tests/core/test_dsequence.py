"""Tests for DistributedSequence running on simulated SPMD programs."""

import numpy as np
import pytest

from repro.cdr import SequenceTC, StringTC, TC_DOUBLE, TC_LONG
from repro.core.distribution import Distribution
from repro.core.dsequence import DistributedSequence
from repro.core.errors import NonLocalAccess
from repro.runtime import MPIRuntime, TulipRuntime

from ..runtime.conftest import make_world


def run_spmd(nprocs, main, rts_factory=MPIRuntime):
    world = make_world(nodes=max(nprocs, 2))
    prog = world.launch(main, host="hostA", nprocs=nprocs,
                        rts_factory=rts_factory)
    world.run()
    return prog.results


class TestConstruction:
    def test_create_zero_filled(self):
        d = DistributedSequence.create(10, TC_DOUBLE, rank=1, nprocs=3)
        assert len(d) == 10
        assert d.local_size == 3  # block(10,3) -> [4,3,3]
        np.testing.assert_array_equal(d.owned_data, np.zeros(3))

    def test_adopt_no_copy(self):
        buf = np.arange(5, dtype=float)
        dist = Distribution.block(10, 2)
        d = DistributedSequence.adopt(buf, dist, rank=0)
        buf[0] = 99.0
        assert d.owned_data[0] == 99.0  # no-ownership: same buffer

    def test_from_global(self):
        dist = Distribution.cyclic(6, 2)
        d = DistributedSequence.from_global(np.arange(6.0), dist, rank=1)
        np.testing.assert_array_equal(d.owned_data, [1.0, 3.0, 5.0])

    def test_wrong_local_size_rejected(self):
        dist = Distribution.block(10, 2)
        with pytest.raises(ValueError, match="local data"):
            DistributedSequence(TC_DOUBLE, dist, 0, np.zeros(3))

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            DistributedSequence(TC_DOUBLE, Distribution.block(4, 2), 5)

    def test_object_element_storage_is_list(self):
        d = DistributedSequence.create(4, StringTC(), rank=0, nprocs=2)
        assert d.owned_data == ["", ""]

    def test_nested_sequence_elements(self):
        """The §4.1 matrix: dsequence of variable-length rows."""
        rows = [np.arange(2.0), np.arange(5.0)]
        dist = Distribution.block(4, 2)
        d = DistributedSequence.adopt(rows, dist, 0, SequenceTC(TC_DOUBLE))
        assert len(d.owned_data[1]) == 5


class TestElementAccess:
    def test_local_get_set(self):
        d = DistributedSequence.create(8, TC_DOUBLE, rank=0, nprocs=2)
        d[1] = 5.0
        assert d[1] == 5.0

    def test_negative_index(self):
        d = DistributedSequence.create(8, TC_DOUBLE, rank=1, nprocs=2)
        d[-1] = 3.0
        assert d[7] == 3.0

    def test_nonlocal_access_without_onesided_raises(self):
        d = DistributedSequence.create(8, TC_DOUBLE, rank=0, nprocs=2)
        with pytest.raises(NonLocalAccess):
            d[7]

    def test_location_transparent_access_over_tulip(self):
        def main(rts):
            dist = Distribution.block(8, rts.nprocs)
            d = DistributedSequence(
                TC_DOUBLE, dist, rts.rank,
                np.full(dist.local_size(rts.rank), float(rts.rank)),
            )
            d.enable_remote_access(rts)
            rts.barrier()
            # every rank reads element 7 (owned by the last rank)
            val = d[7]
            rts.barrier()
            return val

        res = run_spmd(2, main, TulipRuntime)
        assert res == [1.0, 1.0]

    def test_location_transparent_write_over_tulip(self):
        def main(rts):
            dist = Distribution.block(4, rts.nprocs)
            d = DistributedSequence(TC_DOUBLE, dist, rts.rank)
            d.enable_remote_access(rts)
            rts.barrier()
            if rts.rank == 0:
                d[3] = 42.0  # owned by rank 1
            rts.barrier()
            return float(d.owned_data[-1]) if rts.rank == 1 else None

        res = run_spmd(2, main, TulipRuntime)
        assert res[1] == 42.0

    def test_enable_remote_access_requires_onesided(self):
        def main(rts):
            d = DistributedSequence.create(4, TC_DOUBLE, rank=rts.rank,
                                           nprocs=rts.nprocs)
            with pytest.raises(NonLocalAccess):
                d.enable_remote_access(rts)

        run_spmd(1, main, MPIRuntime)


class TestRedistribution:
    @pytest.mark.parametrize("src_kind,dst_kind", [
        ("BLOCK", "CYCLIC"), ("CYCLIC", "BLOCK"),
        ("BLOCK", "CONCENTRATED"), ("CONCENTRATED", "BLOCK"),
    ])
    def test_redistribute_preserves_data(self, src_kind, dst_kind):
        n, p = 23, 3

        def main(rts):
            src = Distribution.of_kind(src_kind, n, p)
            data = np.arange(n, dtype=float) * 2.0
            d = DistributedSequence.from_global(data, src, rts.rank)
            dst = Distribution.of_kind(dst_kind, n, p)
            d2 = d.redistribute(dst, rts)
            expected = [data[i] for i in dst.global_indices(rts.rank)]
            np.testing.assert_array_equal(d2.owned_data, expected)
            return True

        assert run_spmd(p, main) == [True] * p

    def test_redistribute_to_template(self):
        n = 40

        def main(rts):
            d = DistributedSequence.from_global(
                np.arange(n, dtype=float), Distribution.block(n, rts.nprocs),
                rts.rank,
            )
            tmpl = Distribution.template(n, [3, 1])
            d2 = d.redistribute(tmpl, rts)
            return d2.local_size

        assert run_spmd(2, main) == [30, 10]

    def test_redistribute_length_mismatch(self):
        d = DistributedSequence.create(4, TC_DOUBLE, rank=0, nprocs=1)
        with pytest.raises(ValueError):
            d.redistribute(Distribution.block(5, 1), None)

    def test_redistribute_charges_time(self):
        n = 100_000

        def main(rts):
            d = DistributedSequence.from_global(
                np.zeros(n), Distribution.block(n, rts.nprocs), rts.rank
            )
            t0 = rts.now()
            d.redistribute(Distribution.cyclic(n, rts.nprocs), rts)
            return rts.now() - t0

        res = run_spmd(2, main)
        assert all(dt > 0 for dt in res)


class TestGather:
    def test_gather_block(self):
        n = 11

        def main(rts):
            d = DistributedSequence.from_global(
                np.arange(n, dtype=float),
                Distribution.block(n, rts.nprocs), rts.rank,
            )
            return d.gather(rts, root=0)

        res = run_spmd(3, main)
        np.testing.assert_array_equal(res[0], np.arange(n, dtype=float))
        assert res[1] is None and res[2] is None

    def test_gather_object_elements(self):
        def main(rts):
            dist = Distribution.block(4, rts.nprocs)
            d = DistributedSequence.adopt(
                [f"s{i}" for i in dist.global_indices(rts.rank)],
                dist, rts.rank, StringTC(),
            )
            return d.gather(rts, root=0)

        res = run_spmd(2, main)
        assert res[0] == ["s0", "s1", "s2", "s3"]


class TestMisc:
    def test_len_is_global(self):
        d = DistributedSequence.create(100, TC_LONG, rank=0, nprocs=4)
        assert len(d) == 100

    def test_local_nbytes_numeric(self):
        d = DistributedSequence.create(10, TC_DOUBLE, rank=0, nprocs=2)
        assert d.local_nbytes() == 5 * 8 + 8

    def test_repr(self):
        d = DistributedSequence.create(10, TC_DOUBLE, rank=0, nprocs=2)
        assert "BLOCK" in repr(d)
