"""Shared fixtures for runtime tests."""

import pytest

from repro.netsim import ATM_155, Host, Network
from repro.runtime import MPIRuntime, PoomaRuntime, TulipRuntime, World


def make_world(nodes=8, flops=1e7):
    net = Network()
    net.add_host(Host("hostA", nodes=nodes, node_flops=flops))
    net.add_host(Host("hostB", nodes=nodes, node_flops=flops))
    net.connect("hostA", "hostB", ATM_155)
    return World(net)


@pytest.fixture
def world():
    return make_world()


@pytest.fixture(params=[MPIRuntime, TulipRuntime, PoomaRuntime],
                ids=["mpi", "tulip", "pooma"])
def rts_factory(request):
    return request.param
