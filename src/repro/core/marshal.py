"""Marshaling helpers shared by the client engine and the server POA.

Scalar (non-distributed) arguments travel inside the request/reply header
as one concatenated CDR stream; distributed arguments travel as per-thread
fragments.  Container adaptation converts between user-facing containers
(DistributedSequence, or package-native structures behind an adapter) and
the (distribution, local data) pairs the transfer engine works with.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..cdr import (
    CdrDecoder,
    CdrEncoder,
    DSequenceTC,
    TypeCode,
)
from ..cdr import encoder as _cdr_encoder
from .distribution import Distribution
from .dsequence import DistributedSequence
from .errors import BadOperation
from .interfacedef import OpDef, ParamDef
from .request import build as build_dist
from .request import describe as describe_dist

# ---------------------------------------------------------------------------
# Scalar streams
# ---------------------------------------------------------------------------


def encode_scalars(specs: list[tuple[str, TypeCode]], values: dict) -> bytes:
    enc = CdrEncoder()
    for name, tc in specs:
        enc.encode(tc, values[name])
    data = enc.getvalue()
    meter = _cdr_encoder._MARSHAL_METER
    if meter is not None:
        meter.on_encode(len(data))
    return data


def decode_scalars(specs: list[tuple[str, TypeCode]], data: bytes) -> dict:
    dec = CdrDecoder(data)
    meter = _cdr_encoder._MARSHAL_METER
    if meter is not None:
        meter.on_decode(len(data))
    return {name: dec.decode(tc) for name, tc in specs}


def materialize_objrefs(specs: list[tuple[str, TypeCode]], values: dict,
                        ctx) -> dict:
    """Replace decoded ObjectRefs with live proxies (in place)."""
    from ..cdr.typecodes import ObjectRefTC
    from .stubapi import proxy_for

    for name, tc in specs:
        if isinstance(tc, ObjectRefTC):
            values[name] = proxy_for(values[name], ctx)
    return values


def scalar_in_specs(op: OpDef) -> list[tuple[str, TypeCode]]:
    return [(p.name, p.tc) for p in op.scalar_in_params]


def scalar_result_specs(op: OpDef) -> list[tuple[str, TypeCode]]:
    specs = []
    if op.ret_tc is not None and not isinstance(op.ret_tc, DSequenceTC):
        specs.append(("__return", op.ret_tc))
    specs.extend((p.name, p.tc) for p in op.scalar_out_params)
    return specs


# ---------------------------------------------------------------------------
# Container adaptation
# ---------------------------------------------------------------------------


def as_distributed(param: ParamDef, value: Any, nthreads: int,
                   rank: int) -> DistributedSequence:
    """Normalize an argument for a distributed parameter to a
    :class:`DistributedSequence` (no copy where possible).

    Accepts a DistributedSequence, a package container behind the param's
    adapter, or — for single (non-SPMD) invocations — a plain array/list,
    treated as the whole sequence concentrated on this thread.
    """
    tc: DSequenceTC = param.tc  # type: ignore[assignment]
    if param.adapter is not None and param.adapter.handles(value):
        return param.adapter.unwrap(value, tc.element)
    if isinstance(value, DistributedSequence):
        if value.dist.p != nthreads:
            raise ValueError(
                f"argument {param.name!r} is distributed over {value.dist.p} "
                f"threads but the invocation spans {nthreads}"
            )
        return value
    if nthreads == 1 and isinstance(value, (list, np.ndarray)):
        dist = Distribution.concentrated(len(value), 1)
        return DistributedSequence.adopt(value, dist, 0, tc.element)
    raise TypeError(
        f"argument {param.name!r} must be a DistributedSequence"
        + (" or adapted container" if param.adapter is not None else "")
        + f", got {type(value).__name__}"
    )


def wrap_out(param: ParamDef, dseq: DistributedSequence) -> Any:
    """Present a received distributed out-argument to user code (through
    the package adapter when one is configured)."""
    if param.adapter is not None:
        return param.adapter.wrap(dseq)
    return dseq


def fragment_payload(element: TypeCode, values, pool=None):
    """Encode one fragment's element run — re-exported from the fragment
    courier (repro.core.pipeline.courier), the one owner of fragment
    movement.  Numeric ndarray runs take the zero-copy lane and return a
    :class:`~repro.cdr.buffers.PooledBuffer` lease; everything else
    returns ``bytes``."""
    from .pipeline.courier import fragment_payload as _impl

    return _impl(element, values, pool)


def fragment_values(element: TypeCode, payload, pool=None):
    """Decode one fragment's element run (courier re-export); zero-copy
    payloads decode to a read-only ndarray view, consumed before the
    lease is released."""
    from .pipeline.courier import fragment_values as _impl

    return _impl(element, payload, pool)


def release_payload(payload) -> None:
    """Return a pooled fragment payload, if it is one (no-op on bytes)."""
    release = getattr(payload, "release", None)
    if release is not None:
        release()


# ---------------------------------------------------------------------------
# Out-distribution requests
# ---------------------------------------------------------------------------


def encode_out_request(req: Any) -> Optional[tuple]:
    """Normalize a client's requested out-distribution (a kind name,
    proportions, or a full Distribution) to a wire descriptor."""
    if req is None:
        return None
    if isinstance(req, str):
        return ("KIND", req)
    if isinstance(req, Distribution):
        return ("EXACT", describe_dist(req))
    if isinstance(req, (list, tuple)):
        return ("TEMPLATE", tuple(float(w) for w in req))
    raise TypeError(f"cannot interpret out-distribution request {req!r}")


def resolve_out_dist(request: Optional[tuple], default_kind: str, n: int,
                     p: int) -> Distribution:
    """Instantiate the client-side layout of a distributed out argument
    once its length ``n`` is known.  Client and server both run this with
    identical inputs, so their schedules agree."""
    if request is None:
        return Distribution.of_kind(default_kind, n, p)
    tag = request[0]
    if tag == "KIND":
        return Distribution.of_kind(request[1], n, p)
    if tag == "TEMPLATE":
        if len(request[1]) != p:
            raise BadOperation(
                f"out-distribution template has {len(request[1])} weights "
                f"for {p} client threads"
            )
        return Distribution.template(n, request[1])
    if tag == "EXACT":
        d = build_dist(request[1])
        if d.n != n or d.p != p:
            raise BadOperation(
                f"requested out distribution {d} does not match the "
                f"result (n={n}, p={p})"
            )
        return d
    raise BadOperation(f"bad out-distribution request {request!r}")
