"""The PARDIS IDL compiler.

CORBA IDL subset + PARDIS extensions (``dsequence`` distributed sequences,
``#pragma`` package mappings), compiled to Python stub/skeleton modules.

>>> from repro.idl import compile_idl
>>> mod = compile_idl('''
...     typedef dsequence<double, 1024> vec;
...     interface adder { double sum(in vec v); };
... ''')
>>> mod.adder, mod.adder_skel  # doctest: +ELLIPSIS
(<class '...adder'>, <class '...adder_skel'>)
"""

from .compiler import (
    IdlSemanticError,
    IdlSyntaxError,
    compile_idl,
    compile_spec,
    generate,
)
from .parser import parse
from .semantics import analyze

__all__ = [
    "IdlSemanticError",
    "IdlSyntaxError",
    "analyze",
    "compile_idl",
    "compile_spec",
    "generate",
    "parse",
]
