"""Dynamic Invocation Interface + Interface Repository tests."""

import numpy as np
import pytest

from repro.core import (
    BadOperation,
    InterfaceRepository,
    Simulation,
    dynamic_bind,
)
from repro.core.errors import BindingError
from repro.idl import compile_idl

IDL = """
    typedef dsequence<double, 1024> vec;
    interface mathsvc {
        double add(in double a, in double b);
        double total(in vec v);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="dii_stubs")


def run_world(mod, client_main, server_np=2, client_np=1):
    sim = Simulation()

    def server_main(ctx):
        from repro.runtime import collectives as coll

        class Impl(mod.mathsvc_skel):
            def add(self, a, b):
                return a + b

            def total(self, v):
                local = float(np.sum(v.owned_data))
                return coll.allreduce(ctx.rts, local, lambda x, y: x + y)

        ctx.poa.activate(Impl(), "mathsvc", kind="spmd")
        ctx.poa.impl_is_ready()

    sim.server(server_main, host="HOST_2", nprocs=server_np)
    out = {}

    def wrapped(ctx):
        out[ctx.rank] = client_main(ctx)

    sim.client(wrapped, host="HOST_1", nprocs=client_np)
    sim.run()
    return out


class TestInterfaceRepository:
    def test_register_lookup(self, mod):
        ir = InterfaceRepository()
        ir.register(mod.mathsvc._interface)
        assert ir.lookup("IDL:mathsvc:1.0").name == "mathsvc"
        assert ir.contains("IDL:mathsvc:1.0")
        assert ir.repo_ids() == ["IDL:mathsvc:1.0"]

    def test_missing_interface(self):
        with pytest.raises(BadOperation, match="not in the interface"):
            InterfaceRepository().lookup("IDL:ghost:1.0")


class TestDynamicInvocation:
    def test_blocking_invoke_without_stubs(self, mod):
        def main(ctx):
            p = dynamic_bind("mathsvc")
            return p.invoke("add", 2.0, 40.0)

        assert run_world(mod, main)[0] == 42.0

    def test_nonblocking_invoke(self, mod):
        def main(ctx):
            p = dynamic_bind("mathsvc")
            fut = p.invoke_nb("add", 1.0, 1.0)
            return fut.value()

        assert run_world(mod, main)[0] == 2.0

    def test_distributed_arg_through_dii(self, mod):
        def main(ctx):
            p = dynamic_bind("mathsvc", collective=True)
            v = ctx.dseq(np.arange(10.0))
            return p.invoke("total", v)

        out = run_world(mod, main, client_np=2)
        assert out == {0: 45.0, 1: 45.0}

    def test_operations_listing(self, mod):
        def main(ctx):
            return dynamic_bind("mathsvc").operations()

        assert run_world(mod, main)[0] == ["add", "total"]

    def test_unknown_operation(self, mod):
        def main(ctx):
            p = dynamic_bind("mathsvc")
            with pytest.raises(BadOperation, match="available"):
                p.invoke("subtract", 1.0, 2.0)
            return True

        assert run_world(mod, main)[0] is True

    def test_host_hint_checked(self, mod):
        def main(ctx):
            with pytest.raises(BindingError, match="HOST_1"):
                dynamic_bind("mathsvc", host="HOST_1")
            return True

        assert run_world(mod, main)[0] is True

    def test_repr(self, mod):
        def main(ctx):
            return repr(dynamic_bind("mathsvc"))

        assert "mathsvc" in run_world(mod, main)[0]


class TestTracing:
    def test_packet_trace_records_protocol_classes(self, mod):
        from repro.tools import attach_tracer

        sim = Simulation()

        def server_main(ctx):
            class Impl(mod.mathsvc_skel):
                def add(self, a, b):
                    return a + b

                def total(self, v):
                    return 0.0

            ctx.poa.activate(Impl(), "mathsvc", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=1)
        trace = attach_tracer(sim.world.transport)

        def client(ctx):
            p = mod.mathsvc._bind("mathsvc")
            p.add(1.0, 2.0)

        sim.client(client, host="HOST_1", nprocs=1)
        sim.run()
        kinds = {r.kind for r in trace.records}
        assert "request" in kinds
        assert "reply" in kinds
        assert len(trace.by_kind("request")) == 1
        assert trace.bytes_by_kind()["request"] > 0
        assert ("HOST_1", "HOST_2") in trace.bytes_between_hosts()
        assert "packets" in trace.summary()
        assert "request" in trace.timeline()

    def test_timeline_limit(self, mod):
        from repro.tools.trace import PacketTrace, TraceRecord

        t = PacketTrace()
        for i in range(10):
            t.records.append(TraceRecord(0.0, 1.0, "a:0:0", "b:0:0",
                                         0, "user", 10))
        text = t.timeline(limit=3)
        assert text.count("user") == 3
        assert "..." in text

    def test_tag_class_names(self):
        from repro.runtime.tags import TAG_REQUEST_HEADER, collective_tag
        from repro.tools.trace import tag_class

        assert tag_class(TAG_REQUEST_HEADER) == "request"
        assert tag_class(collective_tag(0)) == "collective"
        assert tag_class(5) == "user"
        from repro.runtime.tags import PARDIS_TAG_BASE

        assert tag_class(PARDIS_TAG_BASE + 5) == "pardis-internal"
