"""Figure 2 regeneration: distributed vs local performance of the
concurrent solver metaapplication (paper §4.1).

Prints the four series the paper plots (execution time vs problem size
for the direct method on HOST 1, the iterative method on HOST 2, the
distributed-servers total and the same-server total).
"""

import pytest

from repro.experiments import format_table
from repro.experiments.fig2_solvers import PAPER_SIZES, run_fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_full_sweep(benchmark):
    rows = benchmark.pedantic(run_fig2, kwargs={"sizes": PAPER_SIZES},
                              rounds=1, iterations=1)
    print()
    print(format_table(rows, "Figure 2: execution time (virtual s) vs problem size"))
    benchmark.extra_info["rows"] = [
        (r.n, round(r.t_direct, 2), round(r.t_iterative, 2),
         round(r.t_distributed, 2), round(r.t_same_server, 2))
        for r in rows
    ]
    # The paper's qualitative claims hold at every size.
    for r in rows:
        assert r.t_distributed < r.t_same_server
        assert r.t_distributed >= max(r.t_direct, r.t_iterative)
        assert r.difference < 1e-4
    # and the gap widens with problem size
    gaps = [r.t_same_server - r.t_distributed for r in rows]
    assert gaps[-1] > gaps[0]


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("n", [400, 800, 1200])
def test_fig2_single_size(benchmark, n):
    rows = benchmark.pedantic(run_fig2, kwargs={"sizes": (n,)},
                              rounds=1, iterations=1)
    r = rows[0]
    benchmark.extra_info.update(
        n=n, t_direct=round(r.t_direct, 2),
        t_iterative=round(r.t_iterative, 2),
        t_distributed=round(r.t_distributed, 2),
        t_same_server=round(r.t_same_server, 2),
    )
    assert r.t_distributed < r.t_same_server
