"""Command-line driver for the experiment harnesses.

Regenerate any paper figure from a shell::

    python -m repro.experiments fig2 --sizes 200 600 1200
    python -m repro.experiments fig4 --procs 1 2 3 4
    python -m repro.experiments fig5 --repeats 3 --jitter 0.1
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
from typing import Optional

from .common import format_table
from .plotting import ascii_chart, chart_rows
from .fig2_solvers import PAPER_SIZES, run_fig2
from .fig4_dna import DEFAULT_NSEQS, MATCH_ROUNDS, PAPER_PROCS as FIG4_PROCS, run_fig4
from .fig5_pipeline import (
    PAPER_GRADIENT_EVERY,
    PAPER_PROCS as FIG5_PROCS,
    PAPER_STEPS,
    run_fig5,
)
from .saturation import (
    DEFAULT_CLIENTS as SATURATION_CLIENTS,
    DEFAULT_REQUESTS as SATURATION_REQUESTS,
)
from ..services.admission import SCHEDULING_POLICIES


def _session(args):
    """A TraceSession when any of ``--trace`` / ``--trace-tree`` /
    ``--metrics`` was given, else None.  Distributed tracing is always
    on for an observed session: it is what stitches cross-world spans
    (and costs nothing measurable next to the observer itself)."""
    trace = getattr(args, "trace", None)
    trace_tree = getattr(args, "trace_tree", False)
    metrics = getattr(args, "metrics", None)
    if not (trace or trace_tree or metrics):
        return None
    from ..tools.observe import TraceSession

    # Fail fast on an unwritable path rather than after the whole sweep.
    for path, flag in ((trace, "--trace"), (metrics, "--metrics")):
        if path is None:
            continue
        try:
            with open(path, "w"):
                pass
        except OSError as exc:
            raise SystemExit(f"{flag}: cannot write {path!r}: {exc}")

    return TraceSession(tracing=True, metrics=bool(metrics))


def _finish_trace(args, session, out: str) -> str:
    if session is None:
        return out
    out += "\n\n" + session.report()
    if getattr(args, "trace", None):
        session.write(args.trace)
        out += f"\n\nchrome trace written to {args.trace}"
    if getattr(args, "trace_tree", False):
        out += "\n\nstitched traces:\n" + session.trace_trees()
    if getattr(args, "metrics", None):
        session.write_metrics(args.metrics)
        out += f"\n\nmetrics written to {args.metrics}"
    return out


def _fig2(args) -> str:
    session = _session(args)
    rows = run_fig2(sizes=tuple(args.sizes),
                    client_np=args.client_np, solver_np=args.solver_np,
                    session=session)
    out = format_table(
        rows, "Figure 2: solver metaapplication, execution time (virtual s)")
    if args.plot:
        out += "\n\n" + chart_rows(
            rows, "n",
            ["t_direct", "t_iterative", "t_distributed", "t_same_server"],
            title="Figure 2 (virtual s vs problem size)")
    return _finish_trace(args, session, out)


def _fig4(args) -> str:
    session = _session(args)
    rows = run_fig4(procs=tuple(args.procs), n_seqs=args.nseqs,
                    rounds=args.rounds, session=session)
    out = format_table(
        rows, "Figure 4: centralized vs distributed single objects "
              "(virtual s, client perspective)")
    if args.plot:
        out += "\n\n" + chart_rows(
            rows, "procs", ["t_centralized", "t_distributed"],
            title="Figure 4 left (virtual s vs server processors)")
        out += "\n\n" + chart_rows(
            rows, "procs", ["difference"],
            title="Figure 4 right (difference, virtual s)")
    return _finish_trace(args, session, out)


def _fig5(args) -> str:
    session = _session(args)
    rows = run_fig5(procs=tuple(args.procs), steps=args.steps,
                    gradient_every=args.gradient_every, n=args.n,
                    repeats=args.repeats, jitter=args.jitter,
                    session=session)
    out = format_table(
        rows, "Figure 5: pipelined metaapplication vs components (virtual s)")
    if args.plot:
        out += "\n\n" + chart_rows(
            rows, "procs", ["t_overall", "t_diffusion", "t_gradient"],
            title="Figure 5 (virtual s vs processors)")
    return _finish_trace(args, session, out)


def _saturation(args) -> str:
    from .saturation import rows_to_json, run_saturation

    session = _session(args)
    results = run_saturation(clients=tuple(args.clients),
                             requests=args.requests,
                             capacity=args.capacity,
                             policy=args.policy)
    titles = {
        "admission_off": "Saturation: admission off (unbounded queueing)",
        "admission_on": (f"Saturation: admission on (capacity "
                         f"{args.capacity}, {args.policy})"),
        "admission_on_throttled":
            "Saturation: admission on + client throttle (latency "
            "includes deliberate client pacing)",
    }
    out = "\n\n".join(format_table(rows, titles[series])
                      for series, rows in results.items())
    if args.plot:
        clients = [r.clients for r in results["admission_off"]]
        out += "\n\n" + ascii_chart(
            clients,
            {series: [r.p99_ms for r in rows]
             for series, rows in results.items()},
            title="Accepted-request p99 (ms) vs closed-loop clients",
            x_label="clients")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(rows_to_json(results))
        out += f"\n\nJSON written to {args.json_out}"
    return _finish_trace(args, session, out)


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the PARDIS paper's evaluation figures.",
    )
    ap.add_argument("--plot", action="store_true",
                    help="render ASCII charts of the series")
    ap.add_argument("--trace", metavar="OUT.json", default=None,
                    help="record every request's lifecycle and write a "
                         "Chrome-trace (chrome://tracing / Perfetto) JSON "
                         "file with cross-world flow arrows, plus a "
                         "latency/bytes report")
    ap.add_argument("--trace-tree", action="store_true", dest="trace_tree",
                    help="print each distributed trace as an indented "
                         "causal tree with per-hop latency attribution")
    ap.add_argument("--metrics", metavar="OUT", default=None,
                    help="export the unified metrics registry after the "
                         "run: *.prom gets Prometheus text exposition, "
                         "anything else a JSON snapshot keyed by run")
    sub = ap.add_subparsers(dest="figure", required=True)

    p2 = sub.add_parser("fig2", help="concurrent solvers (§4.1)")
    p2.add_argument("--sizes", type=int, nargs="+", default=list(PAPER_SIZES))
    p2.add_argument("--client-np", type=int, default=2)
    p2.add_argument("--solver-np", type=int, default=2)
    p2.set_defaults(run=_fig2)

    p4 = sub.add_parser("fig4", help="DNA database single objects (§4.2)")
    p4.add_argument("--procs", type=int, nargs="+", default=list(FIG4_PROCS))
    p4.add_argument("--nseqs", type=int, default=DEFAULT_NSEQS)
    p4.add_argument("--rounds", type=int, default=MATCH_ROUNDS)
    p4.set_defaults(run=_fig4)

    p5 = sub.add_parser("fig5", help="POOMA/HPC++ pipeline (§4.3)")
    p5.add_argument("--procs", type=int, nargs="+", default=list(FIG5_PROCS))
    p5.add_argument("--steps", type=int, default=PAPER_STEPS)
    p5.add_argument("--gradient-every", type=int,
                    default=PAPER_GRADIENT_EVERY)
    p5.add_argument("--n", type=int, default=128)
    p5.add_argument("--repeats", type=int, default=1)
    p5.add_argument("--jitter", type=float, default=0.0)
    p5.set_defaults(run=_fig5)

    ps = sub.add_parser(
        "saturation",
        help="offered-load sweep: admission control evidence "
             "(repro.services; not a paper figure)")
    ps.add_argument("--clients", type=int, nargs="+",
                    default=list(SATURATION_CLIENTS))
    ps.add_argument("--requests", type=int, default=SATURATION_REQUESTS)
    ps.add_argument("--capacity", type=int, default=4)
    ps.add_argument("--policy", choices=list(SCHEDULING_POLICIES),
                    default="fifo")
    ps.add_argument("--json", dest="json_out", metavar="OUT.json",
                    default=None,
                    help="write all series as JSON (the CI artifact)")
    ps.set_defaults(run=_saturation)

    pall = sub.add_parser("all", help="every figure at paper scale")
    pall.set_defaults(run=None)

    pv = sub.add_parser("validate",
                        help="check every paper claim (the scorecard)")
    pv.add_argument("--paper-scale", action="store_true",
                    help="validate at the paper's exact parameters")
    pv.set_defaults(run=None)
    return ap


def main(argv: Optional[list[str]] = None) -> int:
    ap = build_parser()
    args = ap.parse_args(argv)
    if args.figure == "validate":
        from .validate import format_report, validate

        results = validate(paper_scale=args.paper_scale)
        print(format_report(results))
        return 0 if all(r.passed for r in results) else 1
    if args.figure == "all":
        for name in ("fig2", "fig4", "fig5"):
            sub_args = ap.parse_args([name])
            print(sub_args.run(sub_args))
            print()
    else:
        print(args.run(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
