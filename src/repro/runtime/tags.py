"""Reserved message-tag space.

The paper (§2.2) requires "a way to distinguish between PARDIS messages
and messages pertaining to computation in user code (for example through a
set of reserved message tags)".  We reserve everything at and above
``PARDIS_TAG_BASE``; user code must stay below it, which the runtime
enforces on every send.
"""

from __future__ import annotations

#: First reserved tag. User tags must satisfy ``0 <= tag < PARDIS_TAG_BASE``.
PARDIS_TAG_BASE = 1 << 24

# -- PARDIS protocol tags (used by the ORB) -----------------------------------
TAG_REQUEST_HEADER = PARDIS_TAG_BASE + 1
TAG_REPLY_HEADER = PARDIS_TAG_BASE + 2
TAG_ARG_FRAGMENT = PARDIS_TAG_BASE + 3
TAG_RESULT_FRAGMENT = PARDIS_TAG_BASE + 4
TAG_REPOSITORY = PARDIS_TAG_BASE + 5
TAG_ACTIVATION = PARDIS_TAG_BASE + 6
TAG_CONTROL = PARDIS_TAG_BASE + 7

# -- internal runtime tags ------------------------------------------------------
#: Base tag for collectives; each collective call consumes one tag out of a
#: large rotating window so that back-to-back collectives never alias.
TAG_COLLECTIVE_BASE = PARDIS_TAG_BASE + (1 << 16)
TAG_COLLECTIVE_WINDOW = 1 << 20

#: One-sided (Tulip-style) protocol tags.
TAG_ONESIDED = PARDIS_TAG_BASE + 9


class ReservedTagError(ValueError):
    """User code attempted to send with a tag in the reserved range."""


def check_user_tag(tag: int) -> int:
    if not (0 <= tag < PARDIS_TAG_BASE):
        raise ReservedTagError(
            f"tag {tag} is in the PARDIS reserved range (>= {PARDIS_TAG_BASE})"
        )
    return tag


def is_reserved(tag: int) -> bool:
    return tag >= PARDIS_TAG_BASE


def collective_tag(seq: int) -> int:
    return TAG_COLLECTIVE_BASE + (seq % TAG_COLLECTIVE_WINDOW)
