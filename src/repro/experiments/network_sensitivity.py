"""Network sensitivity of the §4.3 pipeline.

The paper closes its pipeline discussion with: "although a more stable
network configuration would be required to clearly separate these
influences" — the influences being (1) synchronous send time approaching
the computation time and (2) pipeline congestion.  The simulation *can*
separate them: run the same metaapplication over different interconnects
and with the congestion/offload knobs toggled independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import OrbConfig
from ..netsim import ETHERNET_10, ETHERNET_100, ATM_155, LinkProfile
from .fig5_pipeline import run_overall

PROFILES = {
    "ethernet-10": ETHERNET_10,
    "ethernet-100": ETHERNET_100,
    "atm-155": ATM_155,
}


@dataclass
class SensitivityRow:
    link: str
    t_baseline: float        # 1 outstanding, synchronous sends
    t_comm_threads: float    # sends offloaded
    t_deep_window: float     # offloaded + 4-deep pipeline
    send_effect: float       # baseline - comm_threads: the send-time influence
    congestion_effect: float  # comm_threads - deep_window: the congestion influence


def run_sensitivity(procs: int = 4, steps: int = 50, n: int = 64,
                    links: dict[str, LinkProfile] | None = None
                    ) -> list[SensitivityRow]:
    """The Fig-5 pipeline over different interconnects, with the two
    non-scaling influences measured separately."""
    import repro.experiments.fig5_pipeline as f5

    rows = []
    for name, profile in (links or PROFILES).items():
        original = f5.ETHERNET_10

        def network(jitter=0.0, seed=0, _p=profile):
            from ..netsim import Host, Network, SGI_SHMEM, SP2_SWITCH

            net = Network(jitter=jitter, seed=seed)
            net.add_host(Host("SGI_PC", nodes=10,
                              node_flops=f5.SGI_PC_FLOPS, intra=SGI_SHMEM))
            net.add_host(Host("SP2", nodes=8, node_flops=f5.SP2_FLOPS,
                              intra=SP2_SWITCH))
            net.add_host(Host("INDY", nodes=1, node_flops=f5.INDY_FLOPS))
            net.connect("SGI_PC", "SP2", _p)
            net.connect("SP2", "INDY", _p)
            net.connect("SGI_PC", "INDY", _p)
            return net

        saved = f5._network
        f5._network = network
        try:
            base = run_overall(procs, steps=steps, n=n,
                               config=OrbConfig(max_outstanding=1))
            offload = run_overall(
                procs, steps=steps, n=n,
                config=OrbConfig(max_outstanding=1,
                                 communication_threads=True))
            deep = run_overall(
                procs, steps=steps, n=n,
                config=OrbConfig(max_outstanding=4,
                                 communication_threads=True))
        finally:
            f5._network = saved
        del original
        rows.append(SensitivityRow(
            link=name, t_baseline=base, t_comm_threads=offload,
            t_deep_window=deep,
            send_effect=base - offload,
            congestion_effect=offload - deep,
        ))
    return rows
