"""Small-surface coverage: kernel tracing, one-sided registry helpers,
placeholder arity, proxy introspection."""

import pytest

from repro.core import BindingError, Future, Simulation
from repro.idl import compile_idl
from repro.runtime import TulipRuntime
from repro.simkernel import SimKernel

from ..runtime.conftest import make_world

IDL = "interface tiny { long two_outs(out long a, out long b); };"


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="misc_cov_stubs")


class TestKernelTrace:
    def test_trace_callback_sees_resumes(self):
        lines = []
        k = SimKernel(trace=lines.append)
        k.spawn(lambda: k.advance(1.0), name="traced")
        k.run()
        assert any("traced" in ln for ln in lines)
        assert any("[1.0" in ln or "[0.0" in ln for ln in lines)


class TestOneSidedRegistry:
    def test_registered_and_unregister(self):
        def main(rts):
            rts.register("k", [1, 2])
            assert rts.registered("k") == [1, 2]
            rts.unregister("k")
            with pytest.raises(KeyError):
                rts.registered("k")
            rts.unregister("k")  # idempotent

        world = make_world()
        world.launch(main, host="hostA", nprocs=1, rts_factory=TulipRuntime)
        world.run()


class TestPlaceholderArity:
    def test_too_many_placeholders_rejected(self, mod):
        sim = Simulation()

        def server_main(ctx):
            class Impl(mod.tiny_skel):
                def two_outs(self):
                    return (0, 1, 2)

            ctx.poa.activate(Impl(), "tiny", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=1)
        out = {}

        def client(ctx):
            t = mod.tiny._bind("tiny")
            with pytest.raises(BindingError, match="placeholders"):
                t.two_outs_nb(Future(), Future(), Future())
            # correct arity works, and both placeholders resolve
            a, b = Future(), Future()
            ret = t.two_outs_nb(a, b).value()
            out["vals"] = (ret, a.value(), b.value())

        sim.client(client, host="HOST_1")
        sim.run()
        assert out["vals"] == ((0, 1, 2), 1, 2)


class TestProxyIntrospection:
    def test_object_name_and_repr(self, mod):
        sim = Simulation()

        def server_main(ctx):
            class Impl(mod.tiny_skel):
                def two_outs(self):
                    return (0, 0, 0)

            ctx.poa.activate(Impl(), "tiny", kind="spmd")
            ctx.poa.impl_is_ready()

        sim.server(server_main, host="HOST_2", nprocs=1)
        out = {}

        def client(ctx):
            t = mod.tiny._bind("tiny")
            out["name"] = t._object_name
            out["repr"] = repr(t)
            out["local"] = t._is_local

        sim.client(client, host="HOST_1")
        sim.run()
        assert out["name"] == "tiny"
        assert "tiny" in out["repr"]
        assert out["local"] is False
