"""Admission control: bounded queues, scheduling policies, shedding,
backpressure, and the client-side throttle."""

import pytest

from repro.core import OrbConfig, Simulation, TransientException
from repro.core.pipeline.deadline import DEADLINE_CONTEXT
from repro.core.request import (
    BACKPRESSURE_CONTEXT,
    LOAD_CONTEXT,
    PRIORITY_CONTEXT,
    RequestHeader,
)
from repro.idl import compile_idl
from repro.services import (
    AdmissionController,
    PriorityInterceptor,
    ThrottleInterceptor,
)

IDL = """
    interface slowsvc {
        long crunch(in long x);
    };
"""


@pytest.fixture(scope="module")
def mod():
    return compile_idl(IDL, module_name="admission_stubs")


def _hdr(req_id=0, op="crunch", forwarded=False, contexts=None,
         oneway=False):
    return RequestHeader(
        req_id=req_id, object_name="o", op=op, kind="spmd",
        client_program_id=0, client_nthreads=1, reply_to=(),
        scalar_args=b"", oneway=oneway, forwarded=forwarded,
        service_contexts=dict(contexts or {}))


class TestAdmissionControllerUnit:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            AdmissionController(policy="lifo")

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionController(capacity=0)

    def test_fifo_order_and_shed(self):
        adm = AdmissionController(capacity=2)
        a, b, c = _hdr(1), _hdr(2), _hdr(3)
        assert adm.offer(a, 0.0)
        assert adm.offer(b, 0.0)
        assert not adm.offer(c, 0.0)          # over capacity: shed
        assert adm.pop(1.0) is a
        assert adm.pop(1.0) is b
        assert adm.pop(1.0) is None
        assert (adm.accepted, adm.shed, adm.served) == (2, 1, 2)
        assert adm.max_depth == 2
        assert adm.total_wait == pytest.approx(2.0)

    def test_forwarded_always_admitted_and_served_first(self):
        adm = AdmissionController(capacity=1)
        direct = _hdr(1)
        assert adm.offer(direct, 0.0)
        # Queue is full, but forwarded SPMD headers bypass admission:
        # they replay rank 0's already-made decision.
        fwd = _hdr(2, forwarded=True)
        assert adm.offer(fwd, 0.0)
        assert adm.queue_depth == 2
        assert adm.pop(0.0) is fwd
        assert adm.pop(0.0) is direct
        # Forwarded headers never count as accepted/shed decisions.
        assert (adm.accepted, adm.shed) == (1, 0)

    def test_priority_policy_highest_first_fifo_within(self):
        adm = AdmissionController(capacity=8, policy="priority")
        lo1 = _hdr(1, contexts={PRIORITY_CONTEXT: 1})
        hi = _hdr(2, contexts={PRIORITY_CONTEXT: 5})
        lo2 = _hdr(3, contexts={PRIORITY_CONTEXT: 1})
        none = _hdr(4)                        # unstamped = level 0
        for h in (lo1, hi, lo2, none):
            adm.offer(h, 0.0)
        assert [adm.pop(0.0) for _ in range(4)] == [hi, lo1, lo2, none]

    def test_edf_policy_earliest_deadline_first_undated_last(self):
        adm = AdmissionController(capacity=8, policy="edf")
        late = _hdr(1, contexts={DEADLINE_CONTEXT: 9.0})
        undated = _hdr(2)
        soon = _hdr(3, contexts={DEADLINE_CONTEXT: 1.0})
        for h in (late, undated, soon):
            adm.offer(h, 0.0)
        assert [adm.pop(0.0) for _ in range(3)] == [soon, late, undated]

    def test_stamp_reply_load_report_and_backpressure(self):
        adm = AdmissionController(capacity=4, high_watermark=0.5,
                                  backoff_hint=7e-3)
        contexts = {}
        adm.stamp_reply(contexts)
        assert contexts[LOAD_CONTEXT]["queue_depth"] == 0
        assert contexts[LOAD_CONTEXT]["capacity"] == 4
        assert BACKPRESSURE_CONTEXT not in contexts
        for i in range(2):                    # reach the watermark
            adm.offer(_hdr(i), 0.0)
        contexts = {}
        adm.stamp_reply(contexts)
        assert contexts[LOAD_CONTEXT]["queue_depth"] == 2
        assert contexts[BACKPRESSURE_CONTEXT] == 7e-3

    def test_sweep_budget_default_and_override(self):
        assert AdmissionController(capacity=4).sweep_budget == 8
        assert AdmissionController(capacity=32).sweep_budget == 64
        assert AdmissionController(capacity=4,
                                   sweep_budget=3).sweep_budget == 3


class TestPriorityInterceptor:
    class _Info:
        def __init__(self, op_name):
            self.op_name = op_name
            self.service_contexts = {}

    def test_stamps_nonzero_levels_only(self):
        pi = PriorityInterceptor(default=0, per_op={"urgent": 9})
        info = self._Info("urgent")
        pi.send_request(info)
        assert info.service_contexts[PRIORITY_CONTEXT] == 9
        info = self._Info("routine")
        pi.send_request(info)
        assert PRIORITY_CONTEXT not in info.service_contexts


def _overloaded(mod, n_clients, capacity, requests=8, throttle=False,
                service_time=2e-3):
    """A slow single-threaded server behind admission control, hammered
    by closed-loop clients.  Returns (sim, controller-holder, results)."""
    sim = Simulation(config=OrbConfig(max_outstanding=1))
    throttler = (sim.register_interceptor(ThrottleInterceptor(seed=3))
                 if throttle else None)
    holder = {}

    def server_main(ctx):
        class Impl(mod.slowsvc_skel):
            def crunch(self, x):
                ctx.compute(service_time)
                return x

        ctx.poa.activate(Impl(), "slow", kind="spmd")
        adm = AdmissionController(capacity=capacity)
        ctx.poa.set_admission(adm)
        holder["adm"] = adm
        ctx.poa.impl_is_ready()

    results = {"ok": 0, "shed": 0}

    def client_main(ctx):
        p = mod.slowsvc._bind("slow")
        for i in range(requests):
            try:
                assert p.crunch(i) == i
            except TransientException as exc:
                assert "shed by admission control" in str(exc)
                results["shed"] += 1
            else:
                results["ok"] += 1

    sim.server(server_main, host="HOST_2", nprocs=1)
    sim.client(client_main, host="HOST_1", nprocs=n_clients)
    return sim, holder, results, throttler


class TestAdmissionEndToEnd:
    def test_overload_sheds_with_transient_exception(self, mod):
        sim, holder, results, _ = _overloaded(mod, n_clients=4, capacity=1)
        sim.run()
        adm = holder["adm"]
        assert results["shed"] > 0
        assert results["shed"] == adm.shed
        assert results["ok"] == adm.served == adm.accepted
        assert results["ok"] + results["shed"] == 4 * 8
        assert adm.queue_depth == 0           # drained at the end

    def test_no_shedding_under_light_load(self, mod):
        sim, holder, results, _ = _overloaded(mod, n_clients=1, capacity=4)
        sim.run()
        assert results == {"ok": 8, "shed": 0}
        assert holder["adm"].shed == 0

    def test_throttle_reduces_shedding(self, mod):
        sim, _, plain, _ = _overloaded(mod, n_clients=4, capacity=1)
        sim.run()
        sim2, _, paced, throttler = _overloaded(mod, n_clients=4,
                                                capacity=1, throttle=True)
        sim2.run()
        assert throttler.throttled > 0
        assert throttler.total_backoff > 0.0
        assert paced["shed"] < plain["shed"]

    def test_shed_span_and_admission_metrics(self, mod):
        from repro.tools import attach_metrics

        sim, _, results, _ = _overloaded(mod, n_clients=4, capacity=1)
        obs = sim.attach_observer()
        reg = attach_metrics(sim.world)
        sim.run()
        assert results["shed"] > 0
        assert "shed" in {s.phase for s in obs.spans}
        snap = reg.snapshot()
        samples = snap["pardis_admission_requests_total"]["samples"]
        by_outcome = {s["labels"]["outcome"]: s["value"] for s in samples}
        assert by_outcome["shed"] == results["shed"]
        assert by_outcome["accepted"] == by_outcome["served"]
        assert "pardis_admission_queue_depth" in snap
