"""Lexer tests."""

import pytest

from repro.idl.lexer import (
    IdlSyntaxError,
    T_FLOAT,
    T_IDENT,
    T_INT,
    T_KEYWORD,
    T_PRAGMA,
    T_STRING,
    tokenize,
    unescape_string,
)


def kinds(src):
    return [(t.type, t.value) for t in tokenize(src)[:-1]]


def test_keywords_vs_identifiers():
    toks = kinds("interface foo")
    assert toks == [(T_KEYWORD, "interface"), (T_IDENT, "foo")]


def test_punctuation_including_scope_operator():
    toks = kinds("a::b<<c>>{};")
    values = [v for _, v in toks]
    assert values == ["a", "::", "b", "<<", "c", ">>", "{", "}", ";"]


def test_integer_literals_decimal_and_hex():
    toks = kinds("42 0x2A")
    assert toks == [(T_INT, "42"), (T_INT, "0x2A")]


def test_float_literals():
    toks = kinds("1.5 0.000001 2e10 .5")
    assert all(t == T_FLOAT for t, _ in toks)


def test_string_literal_with_escape():
    toks = kinds(r'"he said \"hi\""')
    assert toks[0][0] == T_STRING
    assert unescape_string(toks[0][1]) == 'he said "hi"'


def test_line_comments_skipped():
    assert kinds("a // comment\nb") == [(T_IDENT, "a"), (T_IDENT, "b")]


def test_block_comments_skipped_and_lines_tracked():
    toks = tokenize("a /* multi\nline */ b")
    assert [(t.type, t.value) for t in toks[:-1]] == [(T_IDENT, "a"), (T_IDENT, "b")]
    assert toks[1].line == 2


def test_pragma_token():
    toks = tokenize("#pragma HPC++:vector\ntypedef long x;")
    assert toks[0].type == T_PRAGMA
    assert "HPC++" in toks[0].value


def test_line_and_column_positions():
    toks = tokenize("ab\n  cd")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_unexpected_character():
    with pytest.raises(IdlSyntaxError, match="line 2"):
        tokenize("ok\n@")


def test_eof_token_always_last():
    assert tokenize("")[-1].type == "eof"
    assert tokenize("x")[-1].type == "eof"
